package dram

import (
	"testing"
	"testing/quick"
)

func newTest(t *testing.T, capacity int) *DRAM {
	t.Helper()
	d, err := New(DefaultParams(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{RowBytes: 0, Banks: 4, ChannelBytes: 16},
		{RowBytes: 10, Banks: 4, ChannelBytes: 16}, // not word multiple
		{RowBytes: 2048, Banks: 0, ChannelBytes: 16},
		{RowBytes: 2048, Banks: 4, ChannelBytes: 0},
		{RowBytes: 2048, Banks: 4, ChannelBytes: 16, TCAS: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := New(DefaultParams(), -1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestAddressMapping(t *testing.T) {
	d := newTest(t, 1<<20)
	if d.RowOf(0) != 0 || d.RowOf(2047) != 0 || d.RowOf(2048) != 1 {
		t.Error("RowOf wrong")
	}
	// Consecutive rows interleave across banks.
	for r := 0; r < 8; r++ {
		addr := uint32(r * 2048)
		if got, want := d.BankOf(addr), r%4; got != want {
			t.Errorf("BankOf(row %d) = %d, want %d", r, got, want)
		}
	}
}

func TestFirstAccessIsRowMiss(t *testing.T) {
	d := newTest(t, 1<<20)
	done, hit := d.Service(0, 0, 128)
	if hit {
		t.Error("first access should miss (closed row)")
	}
	// Closed bank: ACT at 0, +tRCD(9) +tCAS(9) + burst(8) = 26.
	if done != 26 {
		t.Errorf("done = %d, want 26", done)
	}
	s := d.Stats()
	if s.RowMisses != 1 || s.RowHits != 0 || s.Precharges != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRowHitAfterOpen(t *testing.T) {
	d := newTest(t, 1<<20)
	d.Service(0, 0, 128)
	done, hit := d.Service(30, 128, 128) // same row, later
	if !hit {
		t.Error("second access to same row should hit")
	}
	// tCAS(9) + burst(8) from cycle 30.
	if done != 30+9+8 {
		t.Errorf("done = %d, want %d", done, 30+9+8)
	}
}

func TestRowConflictPrecharges(t *testing.T) {
	d := newTest(t, 1<<20)
	d.Service(0, 0, 128) // opens row 0 in bank 0, busy until 26
	// Row 4 also maps to bank 0 (4 % 4 == 0): conflict.
	done, hit := d.Service(100, 4*2048, 128)
	if hit {
		t.Error("different row in same bank should miss")
	}
	// tRAS long satisfied by cycle 100: PRE@100 +tRP(9) -> ACT@109 +tRCD(9)
	// -> CAS@118 +tCAS(9) -> data 127..135.
	if done != 135 {
		t.Errorf("done = %d, want 135", done)
	}
	if d.Stats().Precharges != 1 {
		t.Errorf("precharges = %d", d.Stats().Precharges)
	}
}

func TestTRASDelaysEarlyPrecharge(t *testing.T) {
	d := newTest(t, 1<<20)
	d.Service(0, 0, 16) // ACT at 0; bank busy until 9+9+1=19
	// Immediately conflict at cycle 19: PRE cannot occur before tRAS=27.
	done, _ := d.Service(19, 4*2048, 16)
	// PRE@27 +9 = ACT@36 +9 = CAS@45 +9 = 54 +1 burst = 55.
	if done != 55 {
		t.Errorf("done = %d, want 55", done)
	}
}

func TestBankParallelismOverlaps(t *testing.T) {
	d := newTest(t, 1<<20)
	// Two full-row reads to different banks issued back to back: the second
	// bank's activate overlaps the first bank's burst; total time is far
	// less than 2x serial.
	done1, _ := d.Service(0, 0, 2048)    // bank 0: ACT 0, data 18..146
	done2, _ := d.Service(1, 2048, 2048) // bank 1: ACT 1, data ready 19 but bus busy till 146
	serial := done1 + (done1 - 0)        // what fully serial would cost
	if done2 >= serial {
		t.Errorf("no overlap: done2 = %d, serial = %d", done2, serial)
	}
	// Bus is the only serializer: done2 = done1 + 128 burst.
	if done2 != done1+128 {
		t.Errorf("done2 = %d, want %d", done2, done1+128)
	}
}

func TestFullRowStreamBandwidth(t *testing.T) {
	// Streaming whole rows across banks must approach 16 B/cycle: the data
	// bus stays saturated after the first activate.
	d := newTest(t, 1<<22)
	var now, done int64
	const rows = 32
	for r := 0; r < rows; r++ {
		done, _ = d.Service(now, uint32(r*2048), 2048)
		now = done - 100 // issue next while burst in flight
		if now < 0 {
			now = 0
		}
	}
	total := done
	ideal := int64(rows * 128) // 128 bus cycles per row
	if total > ideal+ideal/10+30 {
		t.Errorf("streaming took %d cycles, ideal %d: bus not saturated", total, ideal)
	}
	if got := d.Stats().BytesRead; got != rows*2048 {
		t.Errorf("BytesRead = %d", got)
	}
}

func TestRowMissRate(t *testing.T) {
	var s Stats
	if s.RowMissRate() != 0 {
		t.Error("empty stats miss rate should be 0")
	}
	s.RowHits, s.RowMisses = 3, 1
	if s.RowMissRate() != 0.25 {
		t.Errorf("miss rate = %v", s.RowMissRate())
	}
}

func TestFunctionalStore(t *testing.T) {
	d := newTest(t, 1<<16)
	d.WriteWord(100, 42)
	if d.ReadWord(100) != 42 {
		t.Error("read after write failed")
	}
	d.LoadWords(2048, []uint32{1, 2, 3})
	if d.ReadWord(2048) != 1 || d.ReadWord(2056) != 3 {
		t.Error("LoadWords failed")
	}
	row := make([]uint32, d.P.RowWords())
	d.ReadRow(2048+4, row)
	if row[0] != 1 || row[2] != 3 {
		t.Errorf("ReadRow = %v...", row[:4])
	}
	if d.CapacityBytes() != 1<<16 {
		t.Errorf("capacity = %d", d.CapacityBytes())
	}
}

func TestUnalignedAccessPanics(t *testing.T) {
	d := newTest(t, 1<<12)
	for _, f := range []func(){
		func() { d.ReadWord(3) },
		func() { d.WriteWord(1, 0) },
		func() { d.LoadWords(2, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on unaligned access")
				}
			}()
			f()
		}()
	}
}

// Property: completion time is monotone in issue time and never earlier than
// now + tCAS + 1 (a hit still pays CAS and one burst beat).
func TestServiceTimingProperties(t *testing.T) {
	f := func(addrRaw uint16, bytesSel, gap uint8) bool {
		d, _ := New(DefaultParams(), 1<<20)
		addr := uint32(addrRaw) * 4 % (1 << 20)
		bytes := 128
		if bytesSel%2 == 0 {
			bytes = 2048
		}
		now := int64(gap)
		done, _ := d.Service(now, addr, bytes)
		if done < now+int64(d.P.TCAS)+1 {
			return false
		}
		// Second access to same address must be a hit and complete at
		// >= previous done.
		done2, hit := d.Service(done, addr, bytes)
		return hit && done2 > done
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: BankReady is consistent with Service scheduling — after a
// service completes at time T, the bank is ready at T.
func TestBankReadyConsistency(t *testing.T) {
	d := newTest(t, 1<<20)
	done, _ := d.Service(0, 0, 2048)
	if d.BankReady(0, done-1) {
		t.Error("bank ready before completion")
	}
	if !d.BankReady(0, done) {
		t.Error("bank not ready at completion")
	}
	// A different bank is ready immediately.
	if !d.BankReady(2048, 0) {
		t.Error("other bank should be ready")
	}
}

func TestIsRowHit(t *testing.T) {
	d := newTest(t, 1<<20)
	if d.IsRowHit(0) {
		t.Error("closed bank reported hit")
	}
	d.Service(0, 0, 128)
	if !d.IsRowHit(512) { // same row
		t.Error("open row not reported hit")
	}
	if d.IsRowHit(4 * 2048) { // same bank, different row
		t.Error("conflicting row reported hit")
	}
}
