// Package dram models the die-stacked DRAM of the paper's PNM node: a
// vertically stacked memory with one (of 32) channels simulated, 4 banks per
// channel, 2 KB rows, and HBM-like timing — 128-bit channel at 1.2 GHz,
// tCAS-tRP-tRCD-tRAS = 9-9-9-27 channel cycles (Table III).
//
// The model is command-level: when the memory controller issues a request,
// Service computes the precharge/activate/CAS/burst schedule against the
// per-bank and shared-data-bus availability times, so bank-level parallelism
// (one bank activating while another bursts) and row-buffer locality emerge
// from the request stream rather than being assumed. Refresh is not modeled,
// matching the paper's GPGPUsim-derived methodology.
//
// The same type also serves as the functional backing store for the input
// dataset (words written by the host before launch, Section IV-E).
package dram

import "fmt"

// Params are the DRAM geometry and timing parameters, all times in channel
// clock cycles.
type Params struct {
	RowBytes     int // bytes per row (per-channel row buffer): 2048
	Banks        int // banks per channel: 4
	ChannelBytes int // data bus width in bytes per channel cycle: 16 (128 bits)
	TCAS         int // column access latency
	TRP          int // precharge latency
	TRCD         int // activate-to-column latency
	TRAS         int // minimum activate-to-precharge interval
}

// DefaultParams returns Table III's die-stacked DRAM parameters.
func DefaultParams() Params {
	return Params{
		RowBytes:     2048,
		Banks:        4,
		ChannelBytes: 16,
		TCAS:         9,
		TRP:          9,
		TRCD:         9,
		TRAS:         27,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.RowBytes <= 0 || p.RowBytes%4 != 0:
		return fmt.Errorf("dram: bad RowBytes %d", p.RowBytes)
	case p.Banks <= 0:
		return fmt.Errorf("dram: bad Banks %d", p.Banks)
	case p.ChannelBytes <= 0:
		return fmt.Errorf("dram: bad ChannelBytes %d", p.ChannelBytes)
	case p.TCAS < 0 || p.TRP < 0 || p.TRCD < 0 || p.TRAS < 0:
		return fmt.Errorf("dram: negative timing parameter")
	}
	return nil
}

// RowWords returns words per row.
func (p Params) RowWords() int { return p.RowBytes / 4 }

// Stats counts row-buffer and bandwidth events. Row hit/miss rate over the
// controller's request stream is the quantity Table IV reports for SSMC.
type Stats struct {
	Requests   uint64
	RowHits    uint64
	RowMisses  uint64 // == activates
	Precharges uint64
	BytesRead  uint64
	// BusyCycles is data-bus occupancy, for bandwidth-utilization reporting.
	BusyCycles uint64
	// OpenCycles is accumulated open-page time: channel cycles between a
	// row's activate and its precharge. Rows still open when the run ends
	// are not counted (the open-page policy never closes them).
	OpenCycles uint64
}

// Add accumulates o into s. A multi-channel memory system folds per-channel
// counters into an aggregate with it.
func (s *Stats) Add(o Stats) {
	s.Requests += o.Requests
	s.RowHits += o.RowHits
	s.RowMisses += o.RowMisses
	s.Precharges += o.Precharges
	s.BytesRead += o.BytesRead
	s.BusyCycles += o.BusyCycles
	s.OpenCycles += o.OpenCycles
}

// RowMissRate returns misses/(hits+misses), or 0 before any traffic.
func (s Stats) RowMissRate() float64 {
	t := s.RowHits + s.RowMisses
	if t == 0 {
		return 0
	}
	return float64(s.RowMisses) / float64(t)
}

type bank struct {
	openRow   int64 // -1 when closed
	busyUntil int64 // earliest cycle the bank accepts a new column/row command
	actAt     int64 // cycle of the last activate, for tRAS
}

// DRAM is one simulated channel of die-stacked memory plus the functional
// word store behind it.
type DRAM struct {
	P     Params
	banks []bank
	// busFree is the earliest cycle the shared data bus is free.
	busFree int64
	stats   Stats
	words   []uint32 // functional contents, index = word address
	tracer  func(ev Event, bank int, row int64)
}

// Event identifies a row-buffer trace event (see SetTracer).
type Event uint8

// Row-buffer trace events.
const (
	EvRowOpen  Event = iota // activate: the row became the bank's open row
	EvRowClose              // precharge: the previously open row was closed
)

// SetTracer installs an observer of row open/close events. The hook runs
// inline during Service; pass nil to disable.
func (d *DRAM) SetTracer(t func(ev Event, bank int, row int64)) { d.tracer = t }

// New returns a channel with the given parameters backing capacityBytes of
// addressable data (rounded up to whole rows).
func New(p Params, capacityBytes int) (*DRAM, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if capacityBytes < 0 {
		return nil, fmt.Errorf("dram: negative capacity")
	}
	rows := (capacityBytes + p.RowBytes - 1) / p.RowBytes
	d := &DRAM{P: p, banks: make([]bank, p.Banks), words: make([]uint32, rows*p.RowWords())}
	for i := range d.banks {
		d.banks[i].openRow = -1
	}
	return d, nil
}

// CapacityBytes returns the addressable backing-store size.
func (d *DRAM) CapacityBytes() int { return len(d.words) * 4 }

// Stats returns a copy of the event counters.
func (d *DRAM) Stats() Stats { return d.stats }

// RowOf returns the row index of a byte address.
func (d *DRAM) RowOf(addr uint32) int64 { return int64(addr) / int64(d.P.RowBytes) }

// BankOf returns the bank an address maps to. Consecutive rows interleave
// across banks so that streaming reads overlap activates with bursts.
func (d *DRAM) BankOf(addr uint32) int { return int(d.RowOf(addr)) % d.P.Banks }

// BankReady reports whether the bank holding addr can accept a command at
// cycle now. The FR-FCFS controller uses it to filter schedulable requests.
func (d *DRAM) BankReady(addr uint32, now int64) bool {
	return d.banks[d.BankOf(addr)].busyUntil <= now
}

// BankFreeAt returns the first cycle at which the bank holding addr accepts
// a new command — the earliest now for which BankReady(addr, now) holds. The
// controller's quiescence probe uses it to bound how long a queued request
// stays unschedulable.
func (d *DRAM) BankFreeAt(addr uint32) int64 {
	return d.banks[d.BankOf(addr)].busyUntil
}

// IsRowHit reports whether addr currently hits the open row of its bank.
func (d *DRAM) IsRowHit(addr uint32) bool {
	b := d.banks[d.BankOf(addr)]
	return b.openRow == d.RowOf(addr)
}

// Service schedules a read of size bytes at addr issued at channel cycle
// now, updating bank and bus state. It returns the cycle at which the last
// data beat arrives and whether the access hit the open row. The caller (the
// memory controller) must have checked BankReady.
func (d *DRAM) Service(now int64, addr uint32, bytes int) (done int64, hit bool) {
	row := d.RowOf(addr)
	bk := &d.banks[d.BankOf(addr)]
	start := now
	if bk.busyUntil > start {
		start = bk.busyUntil
	}
	hit = bk.openRow == row
	if !hit {
		if bk.openRow >= 0 {
			// Precharge, no earlier than tRAS after the activate.
			preAt := start
			if m := bk.actAt + int64(d.P.TRAS); m > preAt {
				preAt = m
			}
			start = preAt + int64(d.P.TRP)
			d.stats.Precharges++
			d.stats.OpenCycles += uint64(preAt - bk.actAt)
			if d.tracer != nil {
				d.tracer(EvRowClose, d.BankOf(addr), bk.openRow)
			}
		}
		bk.actAt = start
		start += int64(d.P.TRCD)
		bk.openRow = row
		d.stats.RowMisses++
		if d.tracer != nil {
			d.tracer(EvRowOpen, d.BankOf(addr), row)
		}
	} else {
		d.stats.RowHits++
	}
	burst := int64((bytes + d.P.ChannelBytes - 1) / d.P.ChannelBytes)
	dataStart := start + int64(d.P.TCAS)
	if d.busFree > dataStart {
		dataStart = d.busFree
	}
	done = dataStart + burst
	d.busFree = done
	bk.busyUntil = done
	d.stats.Requests++
	d.stats.BytesRead += uint64(bytes)
	d.stats.BusyCycles += uint64(burst)
	return done, hit
}

// --- Functional backing store -------------------------------------------

// ReadWord returns the word at byte address addr (must be in range and
// word-aligned; the simulator treats out-of-range input addresses as kernel
// bugs and panics to surface them in tests).
func (d *DRAM) ReadWord(addr uint32) uint32 {
	if addr%4 != 0 {
		panic(fmt.Sprintf("dram: unaligned read at %#x", addr))
	}
	return d.words[addr/4]
}

// WriteWord stores a word at byte address addr.
func (d *DRAM) WriteWord(addr uint32, v uint32) {
	if addr%4 != 0 {
		panic(fmt.Sprintf("dram: unaligned write at %#x", addr))
	}
	d.words[addr/4] = v
}

// LoadWords bulk-copies the input dataset into memory starting at byte
// address base, modeling the host's one-time copy-in (Section IV-E).
func (d *DRAM) LoadWords(base uint32, ws []uint32) {
	if base%4 != 0 {
		panic(fmt.Sprintf("dram: unaligned base %#x", base))
	}
	copy(d.words[base/4:], ws)
}

// ReadRow copies the full row containing addr into dst (len >= RowWords).
func (d *DRAM) ReadRow(addr uint32, dst []uint32) {
	row := d.RowOf(addr)
	start := row * int64(d.P.RowWords())
	copy(dst[:d.P.RowWords()], d.words[start:start+int64(d.P.RowWords())])
}
