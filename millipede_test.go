package millipede

import "testing"

func TestPublicAPISmoke(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Corelets != 32 || cfg.Threads() != 128 {
		t.Fatalf("default config geometry: %d corelets", cfg.Corelets)
	}
	if err := DefaultEnergy().Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(Benchmarks()); got != 8 {
		t.Fatalf("benchmarks = %d, want 8", got)
	}
	if got := len(Architectures()); got < 6 {
		t.Fatalf("architectures = %d", got)
	}
}

func TestPublicRunBenchmark(t *testing.T) {
	cfg := DefaultConfig()
	res, err := RunBenchmark(ArchMillipede, "variance", cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || res.Energy.TotalPJ() <= 0 || res.Insts == 0 {
		t.Errorf("empty result: %+v", res)
	}
	if _, err := RunBenchmark(ArchMillipede, "nope", cfg, 8); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := RunBenchmark("nope", "variance", cfg, 8); err == nil {
		t.Error("unknown architecture accepted")
	}
}

func TestPublicRunReduced(t *testing.T) {
	cfg := DefaultConfig()
	_, out, err := RunReduced(ArchMillipede, "count", cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	// Dual-band histogram: 32 bins; the final word is the low-band sum.
	for _, v := range out[:32] {
		total += uint64(v)
	}
	if total != 64*uint64(cfg.Threads()) {
		t.Errorf("histogram total %d, want %d", total, 64*cfg.Threads())
	}
}

func TestPublicAssemble(t *testing.T) {
	p, err := Assemble("t", "csrr r1, tid\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 2 {
		t.Errorf("insts = %d", len(p.Insts))
	}
	if _, err := Assemble("t", "not a kernel"); err == nil {
		t.Error("bad source accepted")
	}
}

func TestPublicTables(t *testing.T) {
	if TableIII(DefaultConfig()) == "" || TableII() == "" {
		t.Error("empty tables")
	}
}

func TestPublicRunNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Corelets = 8
	cfg.Contexts = 2
	cfg.PrefetchEntries = 8
	r, err := RunNode("count", cfg, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	if r.Time <= 0 || len(r.ProcessorTimes) != 2 || len(r.Output) == 0 {
		t.Errorf("node result: %+v", r)
	}
}

func TestPublicRateTrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Corelets = 8
	cfg.Contexts = 2
	cfg.ChannelHz = 150e6 // memory-bound so the controller moves
	trace, res, err := RateTrace("count", cfg, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Error("no DFS trajectory on a memory-bound machine")
	}
	if res.FinalHz >= cfg.ComputeHz {
		t.Errorf("final clock %.0f not below nominal", res.FinalHz)
	}
}

func TestPublicBarrierAblationAndCharacteristics(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	cfg := DefaultConfig()
	f, err := BarrierAblation(cfg, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 1 {
		t.Error("ablation rows")
	}
}
