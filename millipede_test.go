package millipede

import "testing"

func TestPublicAPISmoke(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Corelets != 32 || cfg.Threads() != 128 {
		t.Fatalf("default config geometry: %d corelets", cfg.Corelets)
	}
	if err := DefaultEnergy().Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(Benchmarks()); got != 8 {
		t.Fatalf("benchmarks = %d, want 8", got)
	}
	if got := len(Architectures()); got < 6 {
		t.Fatalf("architectures = %d", got)
	}
}

func TestPublicRunBenchmark(t *testing.T) {
	cfg := DefaultConfig()
	res, err := RunBenchmark(ArchMillipede, "variance", cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || res.Energy.TotalPJ() <= 0 || res.Insts == 0 {
		t.Errorf("empty result: %+v", res)
	}
	if _, err := RunBenchmark(ArchMillipede, "nope", cfg, 8); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := RunBenchmark("nope", "variance", cfg, 8); err == nil {
		t.Error("unknown architecture accepted")
	}
}

func TestPublicRunReduced(t *testing.T) {
	cfg := DefaultConfig()
	_, out, err := RunReduced(ArchMillipede, "count", cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	// Dual-band histogram: 32 bins; the final word is the low-band sum.
	for _, v := range out[:32] {
		total += uint64(v)
	}
	if total != 64*uint64(cfg.Threads()) {
		t.Errorf("histogram total %d, want %d", total, 64*cfg.Threads())
	}
}

func TestPublicAssemble(t *testing.T) {
	p, err := Assemble("t", "csrr r1, tid\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 2 {
		t.Errorf("insts = %d", len(p.Insts))
	}
	if _, err := Assemble("t", "not a kernel"); err == nil {
		t.Error("bad source accepted")
	}
}

func TestPublicTables(t *testing.T) {
	if TableIII(DefaultConfig()) == "" || TableII() == "" {
		t.Error("empty tables")
	}
}

func TestPublicRunNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Corelets = 8
	cfg.Contexts = 2
	cfg.PrefetchEntries = 8
	r, err := RunNode("count", cfg, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	if r.Time <= 0 || len(r.ProcessorTimes) != 2 || len(r.Output) == 0 {
		t.Errorf("node result: %+v", r)
	}
}

func TestPublicRateTrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Corelets = 8
	cfg.Contexts = 2
	cfg.ChannelHz = 150e6 // memory-bound so the controller moves
	trace, res, err := RateTrace("count", cfg, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Error("no DFS trajectory on a memory-bound machine")
	}
	if res.FinalHz >= cfg.ComputeHz {
		t.Errorf("final clock %.0f not below nominal", res.FinalHz)
	}
}

func TestBenchmarksCachedCopy(t *testing.T) {
	a := Benchmarks()
	b := Benchmarks()
	if len(a) == 0 || len(b) != len(a) {
		t.Fatalf("benchmark lists: %v vs %v", a, b)
	}
	a[0] = "mutated"
	if c := Benchmarks(); c[0] == "mutated" {
		t.Error("Benchmarks returns an aliased slice; callers can corrupt the cache")
	}
}

func TestExperimentRegistryPublic(t *testing.T) {
	infos := Experiments()
	names := map[string]bool{}
	for _, e := range infos {
		names[e.Name] = true
	}
	for _, want := range []string{"fig3", "fig4", "fig5", "fig6", "fig7", "table2", "table3",
		"table4", "ablation", "characteristics", "warpwidth", "channels", "residency", "node", "timeline"} {
		if !names[want] {
			t.Errorf("experiment %q missing from registry", want)
		}
	}
	if _, err := RunExperiment("no-such-experiment", DefaultConfig()); err == nil {
		t.Error("unknown experiment name accepted")
	}
	res, err := RunExperiment("table3", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Text == "" || res.Render() == "" {
		t.Error("table3 experiment rendered empty")
	}
	if res.Text != TableIII(DefaultConfig()) {
		t.Error("registry table3 differs from the TableIII wrapper")
	}
}

func TestRunOptionsPublic(t *testing.T) {
	cfg := DefaultConfig()
	// Observability options must not perturb measurements.
	base, err := RunBenchmark(ArchMillipedeRM, "count", cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	l := NewTraceLog(1024)
	traced, err := RunBenchmark(ArchMillipedeRM, "count", cfg, 64,
		WithTraceSink(l), WithTimeline(64))
	if err != nil {
		t.Fatal(err)
	}
	if traced.Time != base.Time || traced.Insts != base.Insts {
		t.Errorf("options changed the simulation: %d/%d vs %d/%d",
			traced.Time, traced.Insts, base.Time, base.Insts)
	}
	if traced.Timeline == nil || traced.Timeline.Len() == 0 {
		t.Error("WithTimeline attached no sampler")
	}
	if base.Timeline != nil {
		t.Error("timeline present without the option")
	}
	if len(traced.Metrics.Samples) == 0 || len(base.Metrics.Samples) == 0 {
		t.Error("metrics snapshot missing")
	}
	// A different seed is a different workload instance.
	seeded, err := RunBenchmark(ArchMillipede, "count", cfg, 64, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Insts == 0 {
		t.Error("seeded run empty")
	}
}

func TestPublicBarrierAblationAndCharacteristics(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	cfg := DefaultConfig()
	f, err := BarrierAblation(cfg, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 1 {
		t.Error("ablation rows")
	}
}
