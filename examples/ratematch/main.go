// ratematch demonstrates the paper's coarse-grain compute-memory
// rate-matching (Section IV-F): on a genuinely bandwidth-bound machine the
// hill-climbing DFS controller steps the Millipede clock down until the
// processor matches the die-stacked channel, cutting idle core energy
// without hurting runtime; on a compute-bound machine it correctly holds
// the nominal clock.
package main

import (
	"fmt"
	"log"

	millipede "repro"
)

func run(label string, cfg millipede.Config, arch string) millipede.Result {
	res, err := millipede.RunBenchmark(arch, "count", cfg, 2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s clock %3.0f MHz   time %8.1f us   core energy %6.2f uJ   total %6.2f uJ\n",
		label, res.FinalHz/1e6, float64(res.Time)/1e6, res.Energy.CorePJ/1e6, res.Energy.TotalPJ()/1e6)
	return res
}

func main() {
	log.SetFlags(0)
	fmt.Println("Table III machine (compute-bound at full bandwidth):")
	cfg := millipede.DefaultConfig()
	run("  millipede", cfg, millipede.ArchMillipede)
	run("  millipede + rate matching", cfg, millipede.ArchMillipedeRM)

	fmt.Println("\nsame machine with a throttled channel (memory-bound, 150 MHz channel):")
	slow := millipede.DefaultConfig()
	slow.ChannelHz = 150e6
	base := run("  millipede", slow, millipede.ArchMillipede)
	rm := run("  millipede + rate matching", slow, millipede.ArchMillipedeRM)

	fmt.Printf("\nrate matching saved %.1f%% core energy at %.1f%% runtime cost\n",
		(1-rm.Energy.CorePJ/base.Energy.CorePJ)*100,
		(float64(rm.Time)/float64(base.Time)-1)*100)

	// Show the hill climber's trajectory on the memory-bound machine.
	trace, _, err := millipede.RateTrace("count", slow, 2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDFS clock trajectory (5% steps, Section IV-F):")
	step := len(trace)/12 + 1
	for i := 0; i < len(trace); i += step {
		s := trace[i]
		fmt.Printf("  cycle %8d: %3.0f MHz\n", s.Cycle, s.Hz/1e6)
	}
	if len(trace) > 0 {
		last := trace[len(trace)-1]
		fmt.Printf("  converged at %3.0f MHz after %d adjustments\n", last.Hz/1e6, len(trace))
	}
}
