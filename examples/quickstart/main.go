// Quickstart: run one BMLA benchmark on the Millipede processor and on the
// GPGPU baseline, and compare time and energy. This is the smallest
// end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	millipede "repro"
)

func main() {
	log.SetFlags(0)
	cfg := millipede.DefaultConfig() // the paper's Table III machine
	const bench, records = "count", 512

	fmt.Printf("running %q on two PNM architectures (%d corelets/lanes, %d records/thread)\n\n",
		bench, cfg.Corelets, records)
	for _, arch := range []string{millipede.ArchGPGPU, millipede.ArchMillipede} {
		res, err := millipede.RunBenchmark(arch, bench, cfg, records)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s  time %8.1f us   energy %7.2f uJ   row-miss %.3f   %.1f GB/s\n",
			arch, float64(res.Time)/1e6, res.Energy.TotalPJ()/1e6,
			res.RowMissRate, float64(res.DRAMBytes)/float64(res.Time)*1000)
	}
	fmt.Println("\nboth results were verified against the golden MapReduce reference.")

	// Every result also carries a uniform metric snapshot of all component
	// counters; the same names appear on every architecture that has the
	// component (see DESIGN.md "Observability layer").
	res, err := millipede.RunBenchmark(millipede.ArchMillipede, bench, cfg, records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselected metrics (of %d registered):\n", len(res.Metrics.Samples))
	for _, name := range []string{"corelet.instructions", "prefetch.prefetches", "dram.requests", "mem.stall_cycles"} {
		fmt.Printf("  %-24s %.0f\n", name, res.Metrics.Value(name))
	}
}
