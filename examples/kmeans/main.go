// kmeans runs one k-means iteration (Table II's unsupervised clustering) on
// every PNM architecture, verifies that they all produce bit-identical
// partial states, and computes the new centroids from the reduced output —
// the "full application" result the paper emphasizes BMLAs produce.
package main

import (
	"fmt"
	"log"
	"math"

	millipede "repro"
	"repro/internal/workloads"
)

// perturbedStart returns the true generator centroids shifted by a constant
// offset, so the iterations have real work to do.
func perturbedStart() [][]float32 {
	cents := workloads.KMeansCentroids()
	for c := range cents {
		for d := range cents[c] {
			cents[c][d] += float32(1.7 + 0.4*float32(c%3))
		}
	}
	return cents
}

func main() {
	log.SetFlags(0)
	cfg := millipede.DefaultConfig()
	const bench, records = "kmeans", 256
	const k, dims = 8, 8 // internal/kernels geometry

	fmt.Printf("k-means (k=%d, %d dims) on every PNM architecture:\n\n", k, dims)
	var ref []uint32
	for _, arch := range millipede.Architectures() {
		res, out, err := millipede.RunReduced(arch, bench, cfg, records)
		if err != nil {
			log.Fatal(err)
		}
		same := "n/a (first)"
		if ref != nil {
			same = "identical"
			for i := range ref {
				if out[i] != ref[i] {
					same = "DIFFERENT"
				}
			}
		} else {
			ref = out
		}
		fmt.Printf("%-26s time %8.1f us   energy %7.2f uJ   output vs first: %s\n",
			arch, float64(res.Time)/1e6, res.Energy.TotalPJ()/1e6, same)
	}

	// Full application: iterate k-means from perturbed centroids over the
	// same resident dataset until the update shift collapses (the chained
	// MapReductions of Section IV-E).
	cents := perturbedStart()
	fmt.Println("\niterative k-means on Millipede (mean centroid shift per iteration):")
	for it := 1; it <= 4; it++ {
		next, _, err := millipede.KMeansIteration(cfg, cents, records)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  iteration %d: shift %.4f\n", it, millipede.CentroidShift(cents, next))
		cents = next
	}

	// Output layout: counts[k] then sums[k][dims] (float32 bits).
	fmt.Println("\nnew centroids (sum / count) from the reduced Millipede output:")
	for c := 0; c < k; c++ {
		n := ref[c]
		fmt.Printf("  centroid %d (n=%4d): [", c, n)
		for d := 0; d < dims; d++ {
			v := math.Float32frombits(ref[k+c*dims+d])
			if n > 0 {
				v /= float32(n)
			}
			fmt.Printf("%6.2f", v)
			if d < dims-1 {
				fmt.Print(" ")
			}
		}
		fmt.Println("]")
	}
}
