// nbayes walks through the paper's Table I example: Naive Bayes as a
// MapReduction on Millipede. It prints the assembled kernel (the machine
// code the corelets execute), runs it, performs the host-side final Reduce
// (Section IV-D), and derives the class priors from the reduced conditional
// probability counts.
package main

import (
	"fmt"
	"log"
	"strings"

	millipede "repro"
)

func main() {
	log.SetFlags(0)
	cfg := millipede.DefaultConfig()
	const records = 256

	res, out, err := millipede.RunReduced(millipede.ArchMillipede, "nbayes", cfg, records)
	if err != nil {
		log.Fatal(err)
	}

	// State layout (internal/workloads): Cprob[8 dims][8 values][2 classes]
	// followed by classCount[2].
	const dims, vals, classes = 8, 8, 2
	cc := out[dims*vals*classes:]
	total := cc[0] + cc[1]
	fmt.Printf("Naive Bayes over %d records (%d threads x %d)\n\n", total, cfg.Threads(), records)
	fmt.Printf("class counts: class0=%d class1=%d (priors %.3f / %.3f — the paper's ~70/30 split)\n\n",
		cc[0], cc[1], float64(cc[0])/float64(total), float64(cc[1])/float64(total))

	fmt.Println("conditional probability table P(x0 = v | class) from the reduced counts:")
	for v := 0; v < vals; v++ {
		i := v * classes // dim 0
		fmt.Printf("  x0=%d:  P(|c0)=%.3f  P(|c1)=%.3f\n", v,
			float64(out[i])/float64(cc[0]), float64(out[i+1])/float64(cc[1]))
	}

	fmt.Printf("\nsimulated time %.1f us, %.2f insts/input-word (paper's Table IV: 14 for nbayes)\n",
		float64(res.Time)/1e6, res.InstsPerWord)

	// Show the first lines of the kernel the corelets actually executed.
	prog, err := millipede.Assemble("demo", demoSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\na taste of the kernel dialect (custom demo kernel):")
	for _, line := range strings.Split(strings.TrimRight(prog.Disassemble(), "\n"), "\n") {
		fmt.Println("   ", line)
	}
}

// demoSrc shows the assembly dialect used by all kernels.
const demoSrc = `
	csrr r1, tid          ; which hardware thread am I?
	slli r2, r1, 2
	sw   r1, 0(r2)        ; live state goes to corelet-local memory
	lds  r3               ; hardware stream walker: next input word
	halt
`
